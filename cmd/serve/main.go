// Command serve runs the multi-tenant solve service (default) or the
// original self-driving solve loop (-mode loop).
//
// In serve mode it exposes the upload-once/solve-many HTTP API of
// internal/server — POST a Matrix Market body (or a generated analog by
// name) to get a handle, then solve against it — with bounded-queue
// admission control, per-tenant quotas, and multi-RHS request coalescing.
// /metrics serves the OpenMetrics exposition and /debug/pprof/ the
// standard profiler endpoints on the same port.
//
// Usage:
//
//	serve -addr 127.0.0.1:8080 -ranks 4 -max-batch 16 -max-wait 2ms \
//	      -quota-rate 0 -machine cori-haswell
//
//	curl -s -XPOST -H 'Content-Type: application/json' \
//	     -d '{"generate":{"name":"s2d9pt","scale":"small"}}' \
//	     http://127.0.0.1:8080/v1/matrices
//	curl -s -XPOST -H 'Content-Type: application/json' \
//	     -d '{"b":[1,1,...]}' http://127.0.0.1:8080/v1/matrices/<handle>/solve
//
// On SIGINT/SIGTERM the service shuts down gracefully: admission stops
// (new solves get 503), queued and coalescing requests drain bounded by
// -drain-timeout, a final serving summary prints, and only then does the
// HTTP listener close.
//
// Loop mode (-mode loop) keeps the previous behavior — repeated solves of
// one fixed configuration, /metrics and pprof on the side — and is what
// the CI smoke test drives with -n:
//
//	serve -mode loop -matrix s2d9pt -scale small -px 2 -py 2 -pz 2 -n 25
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/metrics"
	"sptrsv/internal/runtime"
	"sptrsv/internal/server"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func main() {
	mode := flag.String("mode", "serve", "serve (multi-tenant solve service) or loop (self-driving solve loop)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")

	// Serve-mode flags.
	ranks := flag.Int("ranks", 4, "rank budget of the default process layout")
	maxQueue := flag.Int("max-queue", 256, "bounded admission queue depth (beyond it requests shed with 429)")
	maxBatch := flag.Int("max-batch", 16, "coalescer flush width (requests per multi-RHS panel solve)")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "coalescer flush deadline after the first request of a batch")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant requests/second (0 disables quotas)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-tenant burst capacity (0 = max(8, 2x rate))")
	maxHandles := flag.Int("max-handles", 64, "matrix handle cache capacity (LRU eviction)")
	tuneFlag := flag.Bool("tune", false, "autotune the default config per uploaded matrix")
	tuneCacheDir := flag.String("tune-cache", "", "persistent tuned-config cache directory (with -tune)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on draining in-flight requests at shutdown")
	traceCap := flag.Int("trace-cap", 0, "per-rank event capacity of armed solve traces (0 = default 65536); overflow drops oldest events")
	exemplars := flag.Bool("exemplars", false, "attach request-ID exemplars to /metrics histogram buckets (OpenMetrics syntax)")
	flightCap := flag.Int("flight-cap", 0, "flight recorder capacity: retained slow/faulted solve captures (0 = default 64, negative disables)")
	slowFactor := flag.Float64("slow-factor", 0, "capture a flight when a solve exceeds this multiple of the rolling median latency (0 = default 8, negative disables)")

	// Shared flags (loop mode uses all of them; serve mode uses machine,
	// backend, and exec for its default configuration).
	matrix := flag.String("matrix", "s2d9pt", "loop mode: matrix analog: s2d9pt, nlpkkt, ldoor, dielfilter, gaas, s1mat")
	mtxPath := flag.String("mtx", "", "loop mode: solve a Matrix Market file instead of a generated analog")
	scale := flag.String("scale", "small", "loop mode: matrix scale: small, medium, large")
	px := flag.Int("px", 2, "loop mode: process rows per 2D grid")
	py := flag.Int("py", 2, "loop mode: process columns per 2D grid")
	pz := flag.Int("pz", 2, "loop mode: number of replicated 2D grids (power of two)")
	algoName := flag.String("algo", "proposed", "loop mode: algorithm: proposed, baseline, gpu-single, gpu-multi, naive-allreduce")
	treeName := flag.String("trees", "auto", "loop mode: communication trees: flat, binary, auto")
	machineName := flag.String("machine", "cori-haswell", "machine model (see internal/machine)")
	backendName := flag.String("backend", "sim", "backend: sim (modeled time) or pool (wall clock)")
	execName := flag.String("exec", "auto", "execution engine: auto, sched, handler")
	solveModeName := flag.String("solve-mode", "auto", "default solve mode: auto, strict, elastic (per-request override via config.mode; -mode is taken by serve/loop)")
	staleness := flag.Int("staleness", 16, "elastic mode's staleness bound S, in dependency levels")
	refineTol := flag.Float64("refine-tol", 0, "elastic mode's acceptance threshold on ‖b−Ax‖∞ (0 = default 1e-8)")
	refineMax := flag.Int("refine-max", 0, "cap on elastic iterative-refinement passes (0 = default 48)")
	levelChunk := flag.Int("level-chunk", 0, "loop mode: scheduled-execution cache-blocking chunk size (0 = default)")
	nrhs := flag.Int("nrhs", 1, "loop mode: number of right-hand sides per solve")
	interval := flag.Duration("interval", 100*time.Millisecond, "loop mode: pause between solves (0 = back to back)")
	count := flag.Int("n", 0, "loop mode: stop after this many solves (0 = run until interrupted)")
	check := flag.Int("check", 10, "loop mode: verify the residual every check-th solve (0 = never)")
	flag.Parse()

	fail := func(err error) { cliutil.Fail("serve", err) }

	model, err := cliutil.ParseMachine(*machineName)
	if err != nil {
		fail(err)
	}
	exec, err := cliutil.ParseExec(*execName)
	if err != nil {
		fail(err)
	}
	solveMode, err := cliutil.ElasticFlags(*solveModeName, *staleness, *refineTol, *refineMax)
	if err != nil {
		fail(err)
	}
	var backend trsv.Backend
	switch *backendName {
	case "sim": // nil Config.Backend means the DES simulator
	case "pool":
		backend = trsv.PoolBackend{Pool: runtime.Pool{}}
	default:
		fail(fmt.Errorf("unknown backend %q (want sim, pool)", *backendName))
	}

	switch *mode {
	case "serve":
		svc, err := server.New(server.Options{
			Machine:      model,
			Ranks:        *ranks,
			Backend:      backend,
			Exec:         exec,
			Mode:         solveMode,
			Staleness:    *staleness,
			RefineTol:    *refineTol,
			RefineMax:    *refineMax,
			MaxQueue:     *maxQueue,
			MaxBatch:     *maxBatch,
			MaxWait:      *maxWait,
			QuotaRate:    *quotaRate,
			QuotaBurst:   *quotaBurst,
			MaxHandles:   *maxHandles,
			Tune:         *tuneFlag,
			TuneCacheDir: *tuneCacheDir,
			TraceCap:     *traceCap,
			Exemplars:    *exemplars,
			FlightCap:    *flightCap,
			SlowFactor:   *slowFactor,
		})
		if err != nil {
			fail(err)
		}
		runService(svc, *addr, *drainTimeout, fail)
	case "loop":
		runLoop(loopConfig{
			matrix: *matrix, mtxPath: *mtxPath, scale: *scale,
			px: *px, py: *py, pz: *pz,
			algoName: *algoName, treeName: *treeName,
			model: model, backend: backend, exec: exec,
			solveMode: solveMode, staleness: *staleness,
			refineTol: *refineTol, refineMax: *refineMax,
			levelChunk: *levelChunk, nrhs: *nrhs,
			addr: *addr, interval: *interval, count: *count, check: *check,
		}, fail)
	default:
		fail(fmt.Errorf("unknown mode %q (want serve, loop)", *mode))
	}
}

// runService hosts the solve service until SIGINT/SIGTERM, then drains.
func runService(svc *server.Server, addr string, drainTimeout time.Duration, fail func(error)) {
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Printf("solve service on http://%s (API under /v1, metrics at /metrics, pprof at /debug/pprof/)\n", ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-stop:
		fmt.Printf("%v: draining (bounded by %v)\n", sig, drainTimeout)
	}

	// Graceful shutdown: stop admitting and flush the coalescers first —
	// in-flight handlers still hold their connections — then close the
	// listener once every admitted request has its response.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}

	// Final serving summary — the metrics publish their last word.
	st := svc.Stats()
	fmt.Printf("served: %.0f ok, %.0f faulted, %.0f invalid, shed %.0f (queue) + %.0f (quota), %.0f during drain\n",
		st.OK, st.Faulted, st.Invalid, st.ShedQueueFull, st.ShedQuota, st.ShedDraining)
	if st.Flushes > 0 {
		fmt.Printf("coalescing: %.0f flushes, mean batch width %.2f\n", st.Flushes, st.MeanBatchWidth)
	}
	if st.OK > 0 {
		fmt.Printf("latency: queue p50/p99 %.3g/%.3g ms, solve p50/p99 %.3g/%.3g ms, request p50/p99 %.3g/%.3g ms\n",
			st.QueueWaitP50*1e3, st.QueueWaitP99*1e3,
			st.SolveP50*1e3, st.SolveP99*1e3,
			st.RequestP50*1e3, st.RequestP99*1e3)
	}
	if st.Flights > 0 {
		fmt.Printf("flight recorder: %.0f captures (GET /debug/flights before the process exits to keep them)\n", st.Flights)
	}
	if st.TraceDropped > 0 {
		fmt.Printf("tracing: %.0f trace events dropped, raise -trace-cap\n", st.TraceDropped)
	}
}

// loopConfig carries the original self-driving loop's flags.
type loopConfig struct {
	matrix, mtxPath, scale string
	px, py, pz             int
	algoName, treeName     string
	model                  *machine.Model
	backend                trsv.Backend
	exec                   trsv.ExecMode
	solveMode              trsv.SolveMode
	staleness, refineMax   int
	refineTol              float64
	levelChunk, nrhs       int
	addr                   string
	interval               time.Duration
	count, check           int
}

// runLoop is the pre-service behavior: repeated solves of one fixed
// configuration with /metrics and pprof on the side.
func runLoop(lc loopConfig, fail func(error)) {
	var a *sparse.CSR
	if lc.mtxPath != "" {
		a = cliutil.LoadMTX("serve", lc.mtxPath)
		fmt.Printf("matrix %s: n=%d, nnz=%d\n", lc.mtxPath, a.N, a.NNZ())
	} else {
		m := gen.Named(lc.matrix, gen.ParseScale(lc.scale))
		a = m.A
		fmt.Printf("matrix %s (analog of %s): n=%d, nnz=%d\n", m.Name, m.PaperName, a.N, a.NNZ())
	}
	sys, err := core.Factorize(a, core.FactorOptions{})
	if err != nil {
		fail(err)
	}

	algo, err := cliutil.ParseAlgorithm(lc.algoName)
	if err != nil {
		fail(err)
	}
	trees, err := cliutil.ParseTrees(lc.treeName)
	if err != nil {
		fail(err)
	}
	solver, err := core.NewSolver(sys, core.Config{
		Layout:     grid.Layout{Px: lc.px, Py: lc.py, Pz: lc.pz},
		Algorithm:  algo,
		Trees:      trees,
		Machine:    lc.model,
		Backend:    lc.backend,
		Exec:       lc.exec,
		LevelChunk: lc.levelChunk,
		Mode:       lc.solveMode,
		Staleness:  lc.staleness,
		RefineTol:  lc.refineTol,
		RefineMax:  lc.refineMax,
	})
	if err != nil {
		fail(err)
	}

	// Serve /metrics and the pprof endpoints on an explicit mux — nothing
	// rides the default mux, so nothing else in the process can leak
	// handlers onto this port.
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(metrics.Default()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", lc.addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	fmt.Printf("serving http://%s/metrics and http://%s/debug/pprof/\n", ln.Addr(), ln.Addr())
	fmt.Printf("solving %s %dx%dx%d on %s (%s exec) every %v — ctrl-c to stop\n",
		lc.algoName, lc.px, lc.py, lc.pz, lc.model.Name, lc.exec.Resolve(), lc.interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	b := sparse.NewPanel(a.N, lc.nrhs)
	for i := range b.Data {
		b.Data[i] = 1 + float64(i%7)/7
	}
	solves, failures := 0, 0
	for lc.count == 0 || solves < lc.count {
		x, rep, err := solver.Solve(b)
		solves++
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "serve: solve %d failed: %v\n", solves, err)
		} else if lc.check > 0 && solves%lc.check == 0 {
			fmt.Printf("solve %d: %.6g s, residual %.3g\n", solves, rep.Time, solver.Residual(x, b))
		}
		select {
		case <-stop:
			fmt.Printf("interrupted after %d solves (%d failed)\n", solves, failures)
			srv.Close()
			return
		case <-time.After(lc.interval):
		}
	}
	fmt.Printf("done: %d solves (%d failed)\n", solves, failures)
	srv.Close()
	if failures > 0 {
		os.Exit(1)
	}
}
