// Command serve runs repeated distributed triangular solves while exposing
// the process over HTTP: /metrics serves the OpenMetrics exposition of the
// solver stack's registry (solve latency histograms, message counts, wait
// time, allreduce rounds, pool hit rates), and /debug/pprof/ serves the
// standard Go profiler endpoints. It is the observability companion to
// cmd/sptrsv — point a Prometheus scraper or `go tool pprof` at a workload
// that is actually solving.
//
// Usage:
//
//	serve -matrix s2d9pt -scale small -px 2 -py 2 -pz 4 -algo proposed \
//	      -machine cori-haswell -addr 127.0.0.1:8080 -interval 100ms
//
//	curl -s http://127.0.0.1:8080/metrics
//	go tool pprof http://127.0.0.1:8080/debug/pprof/profile?seconds=5
//
// With -n 0 (the default) it solves until interrupted; -n K exits after K
// solves (the CI smoke test uses this). Every -check-th solve verifies the
// residual, feeding the sptrsv_core_residual gauge.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/metrics"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func main() {
	matrix := flag.String("matrix", "s2d9pt", "matrix analog: s2d9pt, nlpkkt, ldoor, dielfilter, gaas, s1mat")
	mtxPath := flag.String("mtx", "", "serve solves of a Matrix Market file instead of a generated analog")
	scale := flag.String("scale", "small", "matrix scale: small, medium, large")
	px := flag.Int("px", 2, "process rows per 2D grid")
	py := flag.Int("py", 2, "process columns per 2D grid")
	pz := flag.Int("pz", 2, "number of replicated 2D grids (power of two)")
	algoName := flag.String("algo", "proposed", "algorithm: proposed, baseline, gpu-single, gpu-multi, naive-allreduce")
	treeName := flag.String("trees", "auto", "communication trees: flat, binary, auto")
	machineName := flag.String("machine", "cori-haswell", "machine model (see internal/machine)")
	backendName := flag.String("backend", "sim", "backend: sim (modeled time) or pool (wall clock)")
	execName := flag.String("exec", "auto", "execution engine: auto, sched (level-scheduled sweeps), handler (per-message oracle)")
	levelChunk := flag.Int("level-chunk", 0, "scheduled-execution cache-blocking chunk size (0 = default)")
	nrhs := flag.Int("nrhs", 1, "number of right-hand sides per solve")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address for /metrics and /debug/pprof")
	interval := flag.Duration("interval", 100*time.Millisecond, "pause between solves (0 = back to back)")
	count := flag.Int("n", 0, "stop after this many solves (0 = run until interrupted)")
	check := flag.Int("check", 10, "verify the residual every check-th solve (0 = never)")
	flag.Parse()

	fail := func(err error) { cliutil.Fail("serve", err) }

	var a *sparse.CSR
	if *mtxPath != "" {
		a = cliutil.LoadMTX("serve", *mtxPath)
		fmt.Printf("matrix %s: n=%d, nnz=%d\n", *mtxPath, a.N, a.NNZ())
	} else {
		m := gen.Named(*matrix, gen.ParseScale(*scale))
		a = m.A
		fmt.Printf("matrix %s (analog of %s): n=%d, nnz=%d\n", m.Name, m.PaperName, a.N, a.NNZ())
	}
	sys, err := core.Factorize(a, core.FactorOptions{})
	if err != nil {
		fail(err)
	}

	algo, err := cliutil.ParseAlgorithm(*algoName)
	if err != nil {
		fail(err)
	}
	trees, err := cliutil.ParseTrees(*treeName)
	if err != nil {
		fail(err)
	}
	exec, err := cliutil.ParseExec(*execName)
	if err != nil {
		fail(err)
	}
	var backend trsv.Backend = trsv.SimBackend{}
	if *backendName == "pool" {
		backend = trsv.PoolBackend{Pool: runtime.Pool{}}
	}
	solver, err := core.NewSolver(sys, core.Config{
		Layout:     grid.Layout{Px: *px, Py: *py, Pz: *pz},
		Algorithm:  algo,
		Trees:      trees,
		Machine:    machine.ByName(*machineName),
		Backend:    backend,
		Exec:       exec,
		LevelChunk: *levelChunk,
	})
	if err != nil {
		fail(err)
	}

	// Serve /metrics and the pprof endpoints on an explicit mux — nothing
	// rides the default mux, so nothing else in the process can leak
	// handlers onto this port.
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(metrics.Default()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}()
	fmt.Printf("serving http://%s/metrics and http://%s/debug/pprof/\n", ln.Addr(), ln.Addr())
	fmt.Printf("solving %s %dx%dx%d on %s (%s exec) every %v — ctrl-c to stop\n",
		*algoName, *px, *py, *pz, *machineName, exec.Resolve(), *interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	b := sparse.NewPanel(a.N, *nrhs)
	for i := range b.Data {
		b.Data[i] = 1 + float64(i%7)/7
	}
	solves, failures := 0, 0
	for *count == 0 || solves < *count {
		x, rep, err := solver.Solve(b)
		solves++
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "serve: solve %d failed: %v\n", solves, err)
		} else if *check > 0 && solves%*check == 0 {
			fmt.Printf("solve %d: %.6g s, residual %.3g\n", solves, rep.Time, solver.Residual(x, b))
		}
		select {
		case <-stop:
			fmt.Printf("interrupted after %d solves (%d failed)\n", solves, failures)
			srv.Close()
			return
		case <-time.After(*interval):
		}
	}
	fmt.Printf("done: %d solves (%d failed)\n", solves, failures)
	srv.Close()
	if failures > 0 {
		os.Exit(1)
	}
}
