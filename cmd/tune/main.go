// Command tune runs the autotuner for one matrix × machine × rank budget
// and prints the chosen configuration next to the naive default, with
// their predicted (discrete-event) makespans.
//
// Usage:
//
//	tune -matrix nlpkkt -scale small -machine cori-haswell -p 64
//	tune -mtx path/to/matrix.mtx -machine perlmutter-gpu -p 16 -cache .tunecache
//
// With -cache DIR the tuned choice is persisted: a second run with the
// same matrix fingerprint, machine, rank budget, and nrhs class is served
// from the cache with zero probe solves.
package main

import (
	"flag"
	"fmt"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/gen"
	"sptrsv/internal/machine"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
	"sptrsv/internal/tune"
)

func main() {
	matrix := flag.String("matrix", "s2d9pt", "matrix analog: s2d9pt, nlpkkt, ldoor, dielfilter, gaas, s1mat")
	mtxPath := flag.String("mtx", "", "tune for a Matrix Market file instead of a generated analog")
	scale := flag.String("scale", "small", "matrix scale: small, medium, large")
	machineName := flag.String("machine", "cori-haswell", "machine model (see internal/machine)")
	p := flag.Int("p", 64, "rank budget: total number of ranks the configuration may use")
	nrhs := flag.Int("nrhs", 1, "number of right-hand sides to tune for")
	topk := flag.Int("topk", 0, "candidates probed after the analytic pre-score (0 = default)")
	workers := flag.Int("workers", 0, "concurrent probe solves (0 = default)")
	cacheDir := flag.String("cache", "", "directory of the persistent tuned-config cache (empty = no cache)")
	modeName := flag.String("mode", "auto", "solve mode to stamp on the tuned config: auto, strict, elastic")
	staleness := flag.Int("staleness", 16, "elastic mode's staleness bound S, in dependency levels")
	refineTol := flag.Float64("refine-tol", 0, "elastic mode's acceptance threshold on ‖b−Ax‖∞ (0 = default 1e-8)")
	refineMax := flag.Int("refine-max", 0, "cap on elastic iterative-refinement passes (0 = default 48)")
	verbose := flag.Bool("v", false, "also list every probed candidate")
	flag.Parse()

	fail := func(err error) { cliutil.Fail("tune", err) }

	var a *sparse.CSR
	if *mtxPath != "" {
		a = cliutil.LoadMTX("tune", *mtxPath)
		fmt.Printf("matrix %s: n=%d, nnz=%d\n", *mtxPath, a.N, a.NNZ())
	} else {
		m := gen.Named(*matrix, gen.ParseScale(*scale))
		a = m.A
		fmt.Printf("matrix %s (analog of %s): n=%d, nnz=%d\n", m.Name, m.PaperName, a.N, a.NNZ())
	}
	sys, err := core.Factorize(a, core.FactorOptions{})
	if err != nil {
		fail(err)
	}

	mode, err := cliutil.ElasticFlags(*modeName, *staleness, *refineTol, *refineMax)
	if err != nil {
		fail(err)
	}

	opt := tune.Options{
		NRHS: *nrhs, TopK: *topk, Workers: *workers,
		Mode: mode, Staleness: *staleness, RefineTol: *refineTol, RefineMax: *refineMax,
	}
	if *cacheDir != "" {
		if opt.Cache, err = tune.OpenCache(*cacheDir); err != nil {
			fail(err)
		}
	}
	model := machine.ByName(*machineName)
	res, err := tune.Run(sys, model, *p, opt)
	if err != nil {
		fail(err)
	}

	source := fmt.Sprintf("searched %d candidates, %d probe solves", res.SpaceSize, res.Probes)
	if res.FromCache {
		source = "served from cache, zero probe solves"
	}
	fmt.Printf("tuned for p=%d on %s, nrhs=%d (%s)\n", *p, model.Name, *nrhs, source)
	if mode.Resolve() == trsv.ModeElastic {
		fmt.Printf("solve mode: elastic (S=%d, refine-tol %g, refine-max %d) stamped on both configs\n",
			*staleness, *refineTol, *refineMax)
	}
	fmt.Printf("chosen:  %-12s %dx%dx%d trees=%-6s exec=%-7s  predicted makespan %.6g s\n",
		res.Config.Algorithm, res.Config.Layout.Px, res.Config.Layout.Py, res.Config.Layout.Pz,
		res.Config.Trees, res.Config.Exec.Resolve(), res.Makespan)
	fmt.Printf("default: %-12s %dx%dx%d trees=%-6s exec=%-7s  predicted makespan %.6g s",
		res.Default.Algorithm, res.Default.Layout.Px, res.Default.Layout.Py, res.Default.Layout.Pz,
		res.Default.Trees, res.Default.Exec.Resolve(), res.DefaultMakespan)
	if res.Makespan > 0 {
		fmt.Printf("  (tuned is %.2fx faster)", res.DefaultMakespan/res.Makespan)
	}
	fmt.Println()
	if *verbose {
		for _, s := range res.Probed {
			fmt.Printf("  probed %-12s %dx%dx%d trees=%-6s exec=%-7s  pre-score %.3g s  makespan %.6g s\n",
				s.Config.Algorithm, s.Config.Layout.Px, s.Config.Layout.Py, s.Config.Layout.Pz,
				s.Config.Trees, s.Config.Exec.Resolve(), s.PreScore, s.Makespan)
		}
	}
}
