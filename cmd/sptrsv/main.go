// Command sptrsv runs a single distributed triangular solve on a generated
// matrix and prints the timing report — the quickest way to explore one
// configuration.
//
// Usage:
//
//	sptrsv -matrix s2d9pt -scale small -px 2 -py 2 -pz 4 \
//	       -algo proposed -trees auto -machine cori-haswell -nrhs 1
//
// Algorithms: proposed, baseline, gpu-single (requires px=py=1 and a GPU
// machine model), gpu-multi (requires py=1). Backends: sim (default,
// modeled time) or pool (real goroutines, wall-clock time).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func main() {
	matrix := flag.String("matrix", "s2d9pt", "matrix analog: s2d9pt, nlpkkt, ldoor, dielfilter, gaas, s1mat")
	mtxPath := flag.String("mtx", "", "solve a Matrix Market file instead of a generated analog (must be symmetric-pattern, no-pivoting-safe)")
	scale := flag.String("scale", "small", "matrix scale: small, medium, large")
	px := flag.Int("px", 2, "process rows per 2D grid")
	py := flag.Int("py", 2, "process columns per 2D grid")
	pz := flag.Int("pz", 2, "number of replicated 2D grids (power of two)")
	algoName := flag.String("algo", "proposed", "algorithm: proposed, baseline, gpu-single, gpu-multi")
	treeName := flag.String("trees", "auto", "communication trees: flat, binary, auto")
	machineName := flag.String("machine", "cori-haswell", "machine model (see internal/machine)")
	backendName := flag.String("backend", "sim", "backend: sim (modeled time) or pool (wall clock)")
	execName := flag.String("exec", "auto", "execution engine: auto, sched (level-scheduled sweeps), handler (per-message oracle)")
	commName := flag.String("comm", "auto", "wire format: auto, packed (sparse index+value), dense (full panels), aggregated (packed + per-destination coalescing)")
	levelChunk := flag.Int("level-chunk", 0, "scheduled-execution cache-blocking chunk size (0 = default)")
	modeName := flag.String("mode", "auto", "solve mode: auto, strict (block on every dependency), elastic (bounded staleness + iterative refinement)")
	staleness := flag.Int("staleness", 16, "elastic mode's staleness bound S, in dependency levels")
	refineTol := flag.Float64("refine-tol", 0, "elastic mode's acceptance threshold on ‖b−Ax‖∞ (0 = default 1e-8)")
	refineMax := flag.Int("refine-max", 0, "cap on elastic iterative-refinement passes (0 = default 48)")
	nrhs := flag.Int("nrhs", 1, "number of right-hand sides")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the solve to this path (see also cmd/trace)")
	traceCap := flag.Int("trace-cap", 0, "per-rank trace event capacity when -trace is set (0 = default 65536); overflow drops oldest events")
	flag.Parse()

	fail := func(err error) { cliutil.Fail("sptrsv", err) }

	var a *sparse.CSR
	if *mtxPath != "" {
		a = cliutil.LoadMTX("sptrsv", *mtxPath)
		fmt.Printf("matrix %s: n=%d, nnz=%d\n", *mtxPath, a.N, a.NNZ())
	} else {
		m := gen.Named(*matrix, gen.ParseScale(*scale))
		a = m.A
		fmt.Printf("matrix %s (analog of %s): n=%d, nnz=%d\n", m.Name, m.PaperName, a.N, a.NNZ())
	}

	sys, err := core.Factorize(a, core.FactorOptions{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("factors: nnz(LU)=%d, %d supernodes\n", sys.NNZFactors(), sys.SN.SnCount)

	algo, err := cliutil.ParseAlgorithm(*algoName)
	if err != nil {
		fail(err)
	}
	trees, err := cliutil.ParseTrees(*treeName)
	if err != nil {
		fail(err)
	}
	exec, err := cliutil.ParseExec(*execName)
	if err != nil {
		fail(err)
	}
	comm, err := cliutil.ParseComm(*commName)
	if err != nil {
		fail(err)
	}
	mode, err := cliutil.ElasticFlags(*modeName, *staleness, *refineTol, *refineMax)
	if err != nil {
		fail(err)
	}
	tracing := *tracePath != ""
	ropts := runtime.Options{Trace: tracing, TraceCap: *traceCap}
	var backend trsv.Backend = trsv.SimBackend{Opts: ropts}
	if *backendName == "pool" {
		backend = trsv.PoolBackend{Pool: runtime.Pool{Opts: ropts}}
	}

	cfg := core.Config{
		Layout:     grid.Layout{Px: *px, Py: *py, Pz: *pz},
		Algorithm:  algo,
		Trees:      trees,
		Machine:    machine.ByName(*machineName),
		Backend:    backend,
		Exec:       exec,
		LevelChunk: *levelChunk,
		Comm:       comm,
		Mode:       mode,
		Staleness:  *staleness,
		RefineTol:  *refineTol,
		RefineMax:  *refineMax,
	}
	if err := core.ValidateConfig(sys, cfg); err != nil {
		fail(fmt.Errorf("configuration %dx%dx%d %s on %s is not runnable: %w\n"+
			"hint: let the autotuner pick a valid configuration for this matrix and machine:\n"+
			"  go run ./cmd/tune -matrix %s -scale %s -machine %s -p %d",
			*px, *py, *pz, *algoName, *machineName, err,
			*matrix, *scale, *machineName, (*px)*(*py)*(*pz)))
	}
	solver, err := core.NewSolver(sys, cfg)
	if err != nil {
		fail(err)
	}

	b := sparse.NewPanel(a.N, *nrhs)
	for i := range b.Data {
		b.Data[i] = 1
	}
	x, rep, err := solver.Solve(b)
	if err != nil {
		fail(err)
	}
	fmt.Printf("layout %dx%dx%d, %s, %s trees, %s model, %s exec, %s comm, nrhs=%d\n",
		*px, *py, *pz, *algoName, *treeName, *machineName, exec.Resolve(), comm.Resolve(), *nrhs)
	fmt.Printf("solve time: %.6g s (%s)\n", rep.Time, *backendName)
	fmt.Printf("breakdown (mean/rank): FP %.3g s, XY-comm %.3g s, Z-comm %.3g s\n",
		rep.MeanFP, rep.MeanXY, rep.MeanZ)
	if mode.Resolve() == trsv.ModeElastic {
		fmt.Printf("elastic: S=%d, %d stale supernodes, %d refinement passes, verified residual %.3g\n",
			*staleness, rep.StaleSupernodes, rep.RefinePasses, rep.Residual)
	}
	fmt.Printf("residual ‖Ax−b‖∞ = %.3g\n", solver.Residual(x, b))

	if tracing {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := rep.Raw.WriteTraceNamed(f, trsv.TagName); err != nil {
			// A truncated-but-valid trace is worth keeping; warn and go on.
			var dropped *runtime.DroppedEventsError
			if !errors.As(err, &dropped) {
				f.Close()
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "sptrsv: warning: %d trace events dropped, raise -trace-cap\n", dropped.Dropped)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote trace to %s (%d events) — open in chrome://tracing or ui.perfetto.dev\n",
			*tracePath, rep.Raw.Trace.Events())
	}
}
