// Command figures regenerates the paper's evaluation: Table 1 and the
// analogs of Figs. 4–11, printing aligned text tables (and optionally
// writing per-experiment files under -outdir).
//
// Usage:
//
//	figures [-scale small|medium|large] [-only table1,fig4,...] [-quick] [-outdir results]
//
// The full medium-scale sweep takes tens of minutes (every point is a full
// discrete-event simulation doing the real numeric solve); -quick shrinks
// each sweep to a smoke-test size.
//
// Three extra experiments never run as part of "all":
//
//	figures -only bench   -scale small   # (re)write the BENCH_SPTRSV.json summary
//	figures -only regress -scale small   # compare a fresh run against the baseline
//	figures -only slo     -scale small   # serving SLO report (wall-clock, via internal/server)
//
// regress exits 1 on a fatal regression (latency beyond -latency-tol, any
// message-count increase, bytes beyond -bytes-tol, a vanished record) and 2
// when the -baseline file is missing or unreadable. scripts/bench_regress
// wraps the second form.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sptrsv/internal/bench"
	"sptrsv/internal/cliutil"
	"sptrsv/internal/gen"
)

func main() {
	scale := flag.String("scale", "medium", "matrix scale: small, medium, large")
	only := flag.String("only", "all", "comma-separated experiments: table1,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,ablation,sched,comm,autotune,breakdown,faults,elastic,slo,bench,regress")
	quick := flag.Bool("quick", false, "shrink sweeps to smoke-test size")
	outdir := flag.String("outdir", "", "also write one text file per experiment into this directory")
	baseline := flag.String("baseline", "BENCH_SPTRSV.json", "benchmark summary file: written by -only bench, compared by -only regress")
	latencyTol := flag.Float64("latency-tol", 0.05, "fractional per-record latency slowdown -only regress tolerates")
	bytesTol := flag.Float64("bytes-tol", 0, "fractional per-record byte growth -only regress tolerates (0 = any increase is fatal)")
	modeName := flag.String("mode", "auto", "solve mode for every experiment point: auto, strict, elastic (the elastic sweep sets its own modes)")
	staleness := flag.Int("staleness", 16, "elastic mode's staleness bound S, in dependency levels")
	refineTol := flag.Float64("refine-tol", 0, "elastic mode's acceptance threshold on ‖b−Ax‖∞ (0 = default 1e-8)")
	refineMax := flag.Int("refine-max", 0, "cap on elastic iterative-refinement passes (0 = default 48)")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	solveMode, err := cliutil.ElasticFlags(*modeName, *staleness, *refineTol, *refineMax)
	if err != nil {
		cliutil.Fail("figures", err)
	}

	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	if all {
		want["ablation"] = true
		want["autotune"] = true
		want["faults"] = true
		want["elastic"] = true
		want["sched"] = true
		want["comm"] = true
	}

	run := func(name string, f func(cfg bench.Config)) {
		if !all && !want[name] {
			return
		}
		var w io.Writer = os.Stdout
		var file *os.File
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				cliutil.Fail("figures", err)
			}
			var err error
			file, err = os.Create(filepath.Join(*outdir, name+".txt"))
			if err != nil {
				cliutil.Fail("figures", err)
			}
			w = io.MultiWriter(os.Stdout, file)
		}
		cfg := bench.Config{
			Scale:     gen.ParseScale(*scale),
			Quick:     *quick,
			Verbose:   *verbose,
			Out:       w,
			Mode:      solveMode,
			Staleness: *staleness,
			RefineTol: *refineTol,
			RefineMax: *refineMax,
		}
		t0 := time.Now()
		fmt.Printf("== %s (scale=%s quick=%v) ==\n", name, *scale, *quick)
		f(cfg)
		fmt.Printf("== %s done in %v ==\n\n", name, time.Since(t0).Round(time.Millisecond))
		if file != nil {
			file.Close()
		}
	}

	run("table1", func(cfg bench.Config) { bench.Table1(cfg) })
	run("fig4", func(cfg bench.Config) { bench.Fig4(cfg) })
	run("fig5", func(cfg bench.Config) { bench.Breakdown(cfg, "s2d9pt") })
	run("fig6", func(cfg bench.Config) { bench.Breakdown(cfg, "nlpkkt") })
	run("fig7", func(cfg bench.Config) { bench.LoadBalance(cfg, "s2d9pt") })
	run("fig8", func(cfg bench.Config) { bench.LoadBalance(cfg, "nlpkkt") })
	run("fig9", func(cfg bench.Config) { bench.GPUScaling(cfg, "crusher") })
	run("fig10", func(cfg bench.Config) { bench.GPUScaling(cfg, "perlmutter") })
	run("fig11", func(cfg bench.Config) { bench.Fig11(cfg) })
	run("ablation", func(cfg bench.Config) { bench.Ablation(cfg) })
	run("sched", func(cfg bench.Config) { bench.SchedComparison(cfg) })
	run("comm", func(cfg bench.Config) { bench.CommComparison(cfg) })
	run("autotune", func(cfg bench.Config) { bench.Autotune(cfg) })
	run("breakdown", func(cfg bench.Config) { bench.BreakdownDetail(cfg) })
	run("faults", func(cfg bench.Config) { bench.FaultSweep(cfg) })
	run("elastic", func(cfg bench.Config) { bench.ElasticSweep(cfg) })

	// slo is explicit-only: it measures wall-clock serving latency through
	// the solve service, so its numbers are machine-dependent and do not
	// belong in the deterministic "all" output set.
	if want["slo"] {
		run("slo", func(cfg bench.Config) { bench.SLO(cfg) })
	}

	// bench and regress are explicit-only: "all" must neither overwrite the
	// committed baseline nor fail on a checkout that does not carry one.
	benchCfg := bench.Config{Scale: gen.ParseScale(*scale), Verbose: *verbose, Out: os.Stdout}
	if want["bench"] {
		t0 := time.Now()
		fmt.Printf("== bench (scale=%s) ==\n", *scale)
		sum := bench.BuildSummary(benchCfg)
		f, err := os.Create(*baseline)
		if err != nil {
			cliutil.Fail("figures", err)
		}
		if err := sum.WriteJSON(f); err != nil {
			f.Close()
			cliutil.Fail("figures", err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fail("figures", err)
		}
		printSummary(sum)
		fmt.Printf("wrote %s (%d records)\n", *baseline, len(sum.Records))
		fmt.Printf("== bench done in %v ==\n\n", time.Since(t0).Round(time.Millisecond))
	}
	if want["regress"] {
		t0 := time.Now()
		fmt.Printf("== regress (scale=%s, baseline=%s) ==\n", *scale, *baseline)
		base, err := bench.ReadSummary(*baseline)
		if err != nil {
			cliutil.FailInput("figures", *baseline, err)
		}
		cur := bench.BuildSummary(benchCfg)
		regs, err := bench.CompareSummaries(cur, base, *latencyTol, *bytesTol)
		if err != nil {
			cliutil.Fail("figures", err)
		}
		fatal := 0
		for _, r := range regs {
			fmt.Println(r)
			if r.Fatal {
				fatal++
			}
		}
		fmt.Printf("%d records compared, %d regression(s), %d fatal\n",
			len(base.Records), len(regs), fatal)
		fmt.Printf("== regress done in %v ==\n\n", time.Since(t0).Round(time.Millisecond))
		if fatal > 0 {
			os.Exit(1)
		}
	}
}

// printSummary echoes the summary records as an aligned table so a human
// can eyeball what just went into the JSON.
func printSummary(sum *bench.Summary) {
	fmt.Printf("%-9s %-10s %-28s %-8s %-15s %12s %9s %10s %9s\n",
		"figure", "matrix", "algorithm", "layout", "machine", "seconds", "messages", "bytes", "allocs/op")
	for _, r := range sum.Records {
		fmt.Printf("%-9s %-10s %-28s %-8s %-15s %12.6g %9d %10d %9.0f\n",
			r.Figure, r.Matrix, r.Algorithm, r.Layout, r.Machine,
			r.Seconds, r.Messages, r.Bytes, r.AllocsPerOp)
	}
}
