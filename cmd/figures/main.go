// Command figures regenerates the paper's evaluation: Table 1 and the
// analogs of Figs. 4–11, printing aligned text tables (and optionally
// writing per-experiment files under -outdir).
//
// Usage:
//
//	figures [-scale small|medium|large] [-only table1,fig4,...] [-quick] [-outdir results]
//
// The full medium-scale sweep takes tens of minutes (every point is a full
// discrete-event simulation doing the real numeric solve); -quick shrinks
// each sweep to a smoke-test size.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sptrsv/internal/bench"
	"sptrsv/internal/gen"
)

func main() {
	scale := flag.String("scale", "medium", "matrix scale: small, medium, large")
	only := flag.String("only", "all", "comma-separated experiments: table1,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,ablation,autotune,breakdown,faults")
	quick := flag.Bool("quick", false, "shrink sweeps to smoke-test size")
	outdir := flag.String("outdir", "", "also write one text file per experiment into this directory")
	verbose := flag.Bool("v", false, "log progress")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	if all {
		want["ablation"] = true
		want["autotune"] = true
		want["faults"] = true
	}

	run := func(name string, f func(cfg bench.Config)) {
		if !all && !want[name] {
			return
		}
		var w io.Writer = os.Stdout
		var file *os.File
		if *outdir != "" {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			var err error
			file, err = os.Create(filepath.Join(*outdir, name+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			w = io.MultiWriter(os.Stdout, file)
		}
		cfg := bench.Config{
			Scale:   gen.ParseScale(*scale),
			Quick:   *quick,
			Verbose: *verbose,
			Out:     w,
		}
		t0 := time.Now()
		fmt.Printf("== %s (scale=%s quick=%v) ==\n", name, *scale, *quick)
		f(cfg)
		fmt.Printf("== %s done in %v ==\n\n", name, time.Since(t0).Round(time.Millisecond))
		if file != nil {
			file.Close()
		}
	}

	run("table1", func(cfg bench.Config) { bench.Table1(cfg) })
	run("fig4", func(cfg bench.Config) { bench.Fig4(cfg) })
	run("fig5", func(cfg bench.Config) { bench.Breakdown(cfg, "s2d9pt") })
	run("fig6", func(cfg bench.Config) { bench.Breakdown(cfg, "nlpkkt") })
	run("fig7", func(cfg bench.Config) { bench.LoadBalance(cfg, "s2d9pt") })
	run("fig8", func(cfg bench.Config) { bench.LoadBalance(cfg, "nlpkkt") })
	run("fig9", func(cfg bench.Config) { bench.GPUScaling(cfg, "crusher") })
	run("fig10", func(cfg bench.Config) { bench.GPUScaling(cfg, "perlmutter") })
	run("fig11", func(cfg bench.Config) { bench.Fig11(cfg) })
	run("ablation", func(cfg bench.Config) { bench.Ablation(cfg) })
	run("autotune", func(cfg bench.Config) { bench.Autotune(cfg) })
	run("breakdown", func(cfg bench.Config) { bench.BreakdownDetail(cfg) })
	run("faults", func(cfg bench.Config) { bench.FaultSweep(cfg) })
}
