// Command chaos runs a distributed triangular solve repeatedly under an
// injected fault plan and reports each run's outcome — the interactive
// companion to the chaos test harness in internal/fault.
//
// Usage:
//
//	chaos -matrix s2d9pt -scale small -px 2 -py 2 -pz 2 -algo proposed \
//	      -seeds 3 -straggler 0:3 -jitter 1e-5 -drop -1:-1:-1:1 -crash 1:0 \
//	      -backend sim -deadline 500ms
//
// Fault flags (all optional; with none set every run is healthy):
//
//	-straggler rank:factor[,rank:factor...]  slow ranks down by factor
//	-net-delay rank:seconds[,...]            delay every message a rank sends
//	-jitter seconds                          uniform extra latency in [0, s)
//	-drop src:dst:tag:count[,...]            discard messages (-1 wildcards,
//	                                         count 0 = every match)
//	-crash rank:seconds[,...]                kill ranks at a time
//
// Every run must end in one of two ways: a residual-verified solution, or a
// typed fault error (fault.IsFault). Anything else — an untyped error, a
// bad residual — is a robustness bug and makes chaos exit nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sptrsv/internal/cliutil"
	"sptrsv/internal/core"
	"sptrsv/internal/fault"
	"sptrsv/internal/gen"
	"sptrsv/internal/grid"
	"sptrsv/internal/machine"
	"sptrsv/internal/runtime"
	"sptrsv/internal/sparse"
	"sptrsv/internal/trsv"
)

func main() {
	matrix := flag.String("matrix", "s2d9pt", "matrix analog: s2d9pt, nlpkkt, ldoor, dielfilter, gaas, s1mat")
	mtxPath := flag.String("mtx", "", "stress a Matrix Market file instead of a generated analog")
	scale := flag.String("scale", "small", "matrix scale: small, medium, large")
	px := flag.Int("px", 2, "process rows per 2D grid")
	py := flag.Int("py", 2, "process columns per 2D grid")
	pz := flag.Int("pz", 2, "number of replicated 2D grids (power of two)")
	algoName := flag.String("algo", "proposed", "algorithm: proposed, baseline, gpu-single, gpu-multi")
	treeName := flag.String("trees", "binary", "communication trees: flat, binary, auto")
	machineName := flag.String("machine", "cori-haswell", "machine model (see internal/machine)")
	backendName := flag.String("backend", "sim", "backend: sim (virtual time) or pool (goroutines, wall clock)")
	execName := flag.String("exec", "auto", "execution engine: auto, sched (level-scheduled sweeps), handler (per-message oracle)")
	levelChunk := flag.Int("level-chunk", 0, "scheduled-execution cache-blocking chunk size (0 = default)")
	modeName := flag.String("mode", "auto", "solve mode: auto, strict, elastic (bounded staleness + iterative refinement)")
	staleness := flag.Int("staleness", 16, "elastic mode's staleness bound S, in dependency levels")
	refineTol := flag.Float64("refine-tol", 0, "elastic mode's acceptance threshold on ‖b−Ax‖∞ (0 = default 1e-8)")
	refineMax := flag.Int("refine-max", 0, "cap on elastic iterative-refinement passes (0 = default 48)")
	seeds := flag.Int("seeds", 3, "number of seeds to sweep (1..n)")
	stragglerSpec := flag.String("straggler", "", "rank:factor[,...] — slow ranks down")
	netDelaySpec := flag.String("net-delay", "", "rank:seconds[,...] — delay every message a rank sends (network straggler)")
	jitter := flag.Float64("jitter", 0, "uniform extra message latency in [0, jitter) seconds")
	dropSpec := flag.String("drop", "", "src:dst:tag:count[,...] — message drop rules (-1 wildcards)")
	crashSpec := flag.String("crash", "", "rank:seconds[,...] — kill ranks at a time")
	deadline := flag.Duration("deadline", 500*time.Millisecond, "pool backend stall-watchdog deadline")
	timeout := flag.Duration("timeout", 30*time.Second, "pool backend coarse run timeout")
	flag.Parse()

	fail := func(err error) { cliutil.Fail("chaos", err) }

	algo, err := cliutil.ParseAlgorithm(*algoName)
	if err != nil {
		fail(err)
	}
	trees, err := cliutil.ParseTrees(*treeName)
	if err != nil {
		fail(err)
	}
	exec, err := cliutil.ParseExec(*execName)
	if err != nil {
		fail(err)
	}
	mode, err := cliutil.ElasticFlags(*modeName, *staleness, *refineTol, *refineMax)
	if err != nil {
		fail(err)
	}

	var a *sparse.CSR
	if *mtxPath != "" {
		a = cliutil.LoadMTX("chaos", *mtxPath)
		fmt.Printf("matrix %s: n=%d, nnz=%d\n", *mtxPath, a.N, a.NNZ())
	} else {
		m := gen.Named(*matrix, gen.ParseScale(*scale))
		a = m.A
		fmt.Printf("matrix %s: n=%d, nnz=%d\n", m.Name, a.N, a.NNZ())
	}
	sys, err := core.Factorize(a, core.FactorOptions{})
	if err != nil {
		fail(err)
	}

	straggler, err := parsePairs(*stragglerSpec)
	if err != nil {
		fail(fmt.Errorf("-straggler: %w", err))
	}
	netDelay, err := parsePairs(*netDelaySpec)
	if err != nil {
		fail(fmt.Errorf("-net-delay: %w", err))
	}
	crash, err := parsePairs(*crashSpec)
	if err != nil {
		fail(fmt.Errorf("-crash: %w", err))
	}
	drops, err := parseDrops(*dropSpec)
	if err != nil {
		fail(fmt.Errorf("-drop: %w", err))
	}

	b := sparse.NewPanel(a.N, 1)
	for i := range b.Data {
		b.Data[i] = 1 + float64(i%7)/7
	}

	fmt.Printf("plan: straggler=%v net-delay=%v jitter=%g drops=%v crash=%v, %d seed(s), %s backend, %s exec, %s mode\n",
		straggler, netDelay, *jitter, drops, crash, *seeds, *backendName, exec.Resolve(), mode.Resolve())
	bad := 0
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		plan := &fault.Plan{
			Seed: seed, Straggler: straggler, NetDelay: netDelay, Jitter: *jitter, Drops: drops, Crash: crash,
		}
		cfg := core.Config{
			Layout:     grid.Layout{Px: *px, Py: *py, Pz: *pz},
			Algorithm:  algo,
			Trees:      trees,
			Machine:    machine.ByName(*machineName),
			Exec:       exec,
			LevelChunk: *levelChunk,
			Mode:       mode,
			Staleness:  *staleness,
			RefineTol:  *refineTol,
			RefineMax:  *refineMax,
		}
		switch *backendName {
		case "sim":
			cfg.Faults = plan
		case "pool":
			cfg.Backend = trsv.PoolBackend{Pool: runtime.Pool{
				Timeout: *timeout,
				Opts:    runtime.Options{Faults: plan, StallTimeout: *deadline},
			}}
		default:
			fail(fmt.Errorf("unknown backend %q", *backendName))
		}
		solver, err := core.NewSolver(sys, cfg)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		x, rep, err := solver.Solve(b)
		elapsed := time.Since(start).Round(time.Millisecond)
		switch {
		case err == nil:
			r := solver.Residual(x, b)
			status := "OK"
			if !(r <= 1e-6) {
				status = "BAD-RESIDUAL"
				bad++
			}
			extra := ""
			if mode.Resolve() == trsv.ModeElastic {
				extra = fmt.Sprintf(" stale=%d refine=%d", rep.StaleSupernodes, rep.RefinePasses)
			}
			fmt.Printf("seed %d: %s  solve=%.4gms residual=%.3g%s  (%v)\n",
				seed, status, rep.Time*1e3, r, extra, elapsed)
		case fault.IsFault(err):
			fmt.Printf("seed %d: FAULT  %v  (%v)\n", seed, err, elapsed)
		default:
			fmt.Printf("seed %d: UNTYPED-ERROR  %v  (%v)\n", seed, err, elapsed)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("%d run(s) violated the robustness contract\n", bad)
		os.Exit(1)
	}
}

// parsePairs parses "k:v[,k:v...]" into a map (nil when spec is empty).
func parsePairs(spec string) (map[int]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[int]float64{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.Split(part, ":")
		if len(kv) != 2 {
			return nil, fmt.Errorf("entry %q is not rank:value", part)
		}
		k, err := strconv.Atoi(strings.TrimSpace(kv[0]))
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// parseDrops parses "src:dst:tag:count[,...]" into drop rules.
func parseDrops(spec string) ([]fault.DropRule, error) {
	if spec == "" {
		return nil, nil
	}
	var out []fault.DropRule
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("rule %q is not src:dst:tag:count", part)
		}
		vals := make([]int, 4)
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out = append(out, fault.DropRule{Src: vals[0], Dst: vals[1], Tag: vals[2], Count: vals[3]})
	}
	return out, nil
}
